// Shared harness for the figure-reproduction benches.
//
// Each bench sweeps one experimental knob (Table III), runs the five
// algorithms of the paper's evaluation (WATTER-expect / -online / -timeout,
// GDP, GAS; plus the Section V GMM strategy), and prints one table per
// metric in the layout of the corresponding figure: rows = sweep values,
// columns = algorithms.
//
// Scale note (DESIGN.md substitution 3): order/worker counts are scaled down
// ~30x from the paper so a full sweep finishes in minutes on one core while
// preserving the order-to-worker ratios that drive the trends.
#ifndef WATTER_BENCH_BENCH_UTIL_H_
#define WATTER_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/baseline/gas.h"
#include "src/baseline/gdp.h"
#include "src/common/table.h"
#include "src/rl/trainer.h"
#include "src/sim/platform.h"
#include "src/strategy/threshold_provider.h"
#include "src/workload/scenario.h"

namespace watter {
namespace bench {

/// True when `--quick` is passed or WATTER_BENCH_QUICK is set: fewer sweep
/// points and no RL training, for smoke runs.
inline bool QuickMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  }
  return std::getenv("WATTER_BENCH_QUICK") != nullptr;
}

/// Threads the simulated platforms run on: `--threads T` or
/// WATTER_BENCH_THREADS (0 = all hardware threads; default 1 = serial).
/// Metrics are thread-count-independent, so sweeps stay comparable.
inline int BenchThreads(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      return std::atoi(argv[i + 1]);
    }
  }
  const char* env = std::getenv("WATTER_BENCH_THREADS");
  return env != nullptr ? std::atoi(env) : 1;
}

/// Baseline workload for a dataset at the reproduction scale. Defaults
/// mirror Table III's italicized values: n = base, m = 5k-scaled, tau = 1.6,
/// Kw = 4.
///
/// The city and time window are sized so that the *spatio-temporal order
/// density* (arrivals per cell-hour), not just the n/m ratio, is in the
/// paper's regime: at the paper's 30k-125k orders/day nearly every order
/// finds pooling partners, and that density is what makes waiting pay off.
/// A naive 30x scale-down of n alone would leave most orders partnerless
/// and flip the comparison (see EXPERIMENTS.md, calibration note).
inline WorkloadOptions BaseWorkload(DatasetKind dataset) {
  WorkloadOptions options;
  options.dataset = dataset;
  options.num_orders = dataset == DatasetKind::kNyc ? 3000 : 1500;
  options.num_workers = 150;
  options.tau = 1.6;
  options.eta = 0.8;
  options.max_capacity = 4;
  options.duration = 2.0 * 3600.0;
  options.city_width = 24;
  options.city_height = 24;
  // One fixed city per dataset (training and evaluation share roads).
  options.city_seed = 50000 + static_cast<uint64_t>(dataset) * 101;
  options.seed = 424242;  // Evaluation day.
  return options;
}

/// Named algorithm runner.
struct Algorithm {
  std::string name;
  std::function<MetricsReport(Scenario*)> run;
};

/// Trains a WATTER-expect model for workloads shaped like `base`.
inline Result<ExpectModel> TrainExpect(const WorkloadOptions& base) {
  ExpectTrainOptions train;
  train.bootstrap_days = 1;
  train.behavior_days = 2;
  train.epochs = 2;
  return TrainExpectModel(base, train);
}

/// The paper's algorithm family. `model` may be null (quick mode): then
/// WATTER-expect and WATTER-gmm are omitted.
inline std::vector<Algorithm> AlgorithmFamily(const ExpectModel* model) {
  std::vector<Algorithm> algorithms;
  if (model != nullptr) {
    algorithms.push_back({"WATTER-expect", [model](Scenario* s) {
                            auto provider = model->MakeProvider();
                            return RunWatter(s, provider.get());
                          }});
    algorithms.push_back({"WATTER-gmm", [model](Scenario* s) {
                            GmmThresholdProvider provider(*model->mixture);
                            return RunWatter(s, &provider);
                          }});
  }
  algorithms.push_back({"WATTER-online", [](Scenario* s) {
                          OnlineThresholdProvider provider;
                          return RunWatter(s, &provider);
                        }});
  algorithms.push_back({"WATTER-timeout", [](Scenario* s) {
                          TimeoutThresholdProvider provider;
                          return RunWatter(s, &provider);
                        }});
  algorithms.push_back({"GDP", [](Scenario* s) { return RunGdp(s); }});
  algorithms.push_back({"GAS", [](Scenario* s) { return RunGas(s); }});
  return algorithms;
}

/// One metric extracted from a report.
struct MetricColumn {
  const char* title;
  std::function<double(const MetricsReport&)> get;
  int precision;
};

/// The paper's four measurements. "Extra Time" is the METRS objective
/// (served extra time + rejection penalties, Equation 2).
inline std::vector<MetricColumn> PaperMetrics() {
  return {
      {"Extra Time (s)",
       [](const MetricsReport& r) { return r.metrs_objective; }, 0},
      {"Unified Cost",
       [](const MetricsReport& r) { return r.unified_cost; }, 0},
      {"Service Rate (%)",
       [](const MetricsReport& r) { return r.service_rate * 100.0; }, 1},
      {"Running Time (us/order)",
       [](const MetricsReport& r) {
         return r.running_time_per_order * 1e6;
       },
       1},
  };
}

/// Runs `algorithms` over scenarios produced per sweep value and prints the
/// figure-style tables. `make_options` maps a sweep value to workload
/// options; `sweep_label` names the x-axis (e.g. "n", "m", "tau").
template <typename SweepValue>
void RunSweep(const std::string& figure, DatasetKind dataset,
              const std::string& sweep_label,
              const std::vector<SweepValue>& values,
              const std::function<WorkloadOptions(SweepValue)>& make_options,
              const std::vector<Algorithm>& algorithms) {
  // results[value][algorithm].
  std::vector<std::vector<MetricsReport>> results;
  for (SweepValue value : values) {
    results.emplace_back();
    for (const Algorithm& algorithm : algorithms) {
      WorkloadOptions options = make_options(value);
      auto scenario = GenerateScenario(options);
      if (!scenario.ok()) {
        std::fprintf(stderr, "scenario failed: %s\n",
                     scenario.status().ToString().c_str());
        std::exit(1);
      }
      results.back().push_back(algorithm.run(&*scenario));
    }
  }
  for (const MetricColumn& metric : PaperMetrics()) {
    std::printf("-- %s | %s | %s (rows: %s) --\n", figure.c_str(),
                DatasetName(dataset), metric.title, sweep_label.c_str());
    std::vector<std::string> headers = {sweep_label};
    for (const Algorithm& algorithm : algorithms) {
      headers.push_back(algorithm.name);
    }
    Table table(headers);
    for (size_t v = 0; v < values.size(); ++v) {
      std::vector<std::string> row = {std::to_string(values[v])};
      for (size_t a = 0; a < algorithms.size(); ++a) {
        row.push_back(
            Table::Num(metric.get(results[v][a]), metric.precision));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
  }
}

/// Datasets to sweep: all three, or just CDC in quick mode.
inline std::vector<DatasetKind> BenchDatasets(bool quick) {
  if (quick) return {DatasetKind::kCdc};
  return {DatasetKind::kNyc, DatasetKind::kCdc, DatasetKind::kXia};
}

}  // namespace bench
}  // namespace watter

#endif  // WATTER_BENCH_BENCH_UTIL_H_
