// Figure 6: performance while varying the maximum vehicle capacity Kw in
// {2, 3, 4, 5} (worker capacities are sampled uniformly from [2, Kw]).
//
// Shapes to reproduce: larger capacities help the pooling methods (bigger
// feasible groups) while GDP benefits less; WATTER-expect stays best on
// unified cost and service rate.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace watter;
  using namespace watter::bench;
  bool quick = QuickMode(argc, argv);
  int threads = BenchThreads(argc, argv);
  SimOptions sim;
  sim.dispatch = SingleDispatchMode(argc, argv);
  sim.num_shards = SingleBenchShards(argc, argv);
  BenchJson().path = BenchJsonPath(argc, argv);
  BenchJson().threads = threads;
  BenchJson().dispatch = DispatchName(sim.dispatch);
  BenchJson().shards = sim.num_shards;
  GeoBackend geo = BenchGeoBackend(argc, argv);
  BenchJson().geo = GeoName(geo);

  for (DatasetKind dataset : BenchDatasets(quick)) {
    WorkloadOptions base = BaseWorkload(dataset);
    base.num_threads = threads;
    base.geo = geo;
    std::unique_ptr<ExpectModel> model;
    if (!quick) {
      auto trained = TrainExpect(base);
      if (!trained.ok()) {
        std::fprintf(stderr, "training failed: %s\n",
                     trained.status().ToString().c_str());
        return 1;
      }
      model = std::make_unique<ExpectModel>(std::move(trained).value());
    }
    // Observability taps (training days above stay untraced).
    base.trace_path = BenchTracePath(argc, argv);
    base.timeline_path = BenchTimelinePath(argc, argv);
    std::vector<int> sweep = {2, 3, 4, 5};
    if (quick) sweep = {2, 5};
    RunSweep<int>(
        "Figure 6", dataset, "Kw", sweep,
        [&base](int capacity) {
          WorkloadOptions options = base;
          options.max_capacity = capacity;
          return options;
        },
        AlgorithmFamily(model.get(), sim));
  }
  return 0;
}
