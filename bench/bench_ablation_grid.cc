// Appendix ablation: grid-index resolution (the paper tests grid sizes and
// picks 10x10). The grid drives nearest-worker search and the RL features;
// resolution mainly trades lookup precision against per-check cost.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace watter;
  using namespace watter::bench;
  bool quick = QuickMode(argc, argv);

  WorkloadOptions base = BaseWorkload(DatasetKind::kCdc);
  std::vector<int> sweep = {4, 8, 10, 16, 24};
  if (quick) sweep = {4, 16};

  for (const MetricColumn& metric : PaperMetrics()) {
    Table table({"grid_cells", "WATTER-online", "GAS"});
    for (int cells : sweep) {
      std::vector<std::string> row = {std::to_string(cells)};
      {
        auto scenario = GenerateScenario(base);
        if (!scenario.ok()) return 1;
        OnlineThresholdProvider provider;
        SimOptions sim;
        sim.grid_cells = cells;
        MetricsReport report = RunWatter(&*scenario, &provider, sim);
        row.push_back(Table::Num(metric.get(report), metric.precision));
      }
      {
        auto scenario = GenerateScenario(base);
        if (!scenario.ok()) return 1;
        GasOptions gas;
        gas.grid_cells = cells;
        MetricsReport report = RunGas(&*scenario, gas);
        row.push_back(Table::Num(metric.get(report), metric.precision));
      }
      table.AddRow(std::move(row));
    }
    std::printf("-- Ablation grid | CDC | %s --\n", metric.title);
    table.Print();
    std::printf("\n");
  }
  return 0;
}
