// Appendix ablation: the asynchronous check period (the paper picks a 10 s
// time slot dt). Finer checks respond faster but cost more compute; coarse
// checks delay dispatches and can miss expiring groups.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace watter;
  using namespace watter::bench;
  bool quick = QuickMode(argc, argv);

  WorkloadOptions base = BaseWorkload(DatasetKind::kCdc);
  std::vector<double> sweep = {2.0, 5.0, 10.0, 20.0, 40.0};
  if (quick) sweep = {5.0, 20.0};

  std::vector<Algorithm> algorithms;
  for (double period : sweep) {
    (void)period;
  }
  // Sweep the check period through SimOptions rather than the workload.
  for (const MetricColumn& metric : PaperMetrics()) {
    Table table({"check_period(s)", "WATTER-online", "WATTER-timeout"});
    for (double period : sweep) {
      std::vector<std::string> row = {Table::Num(period, 0)};
      for (int variant = 0; variant < 2; ++variant) {
        auto scenario = GenerateScenario(base);
        if (!scenario.ok()) {
          std::fprintf(stderr, "scenario failed: %s\n",
                       scenario.status().ToString().c_str());
          return 1;
        }
        OnlineThresholdProvider online;
        TimeoutThresholdProvider timeout;
        ThresholdProvider* provider =
            variant == 0 ? static_cast<ThresholdProvider*>(&online)
                         : static_cast<ThresholdProvider*>(&timeout);
        SimOptions sim;
        sim.check_period = period;
        MetricsReport report = RunWatter(&*scenario, provider, sim);
        row.push_back(Table::Num(metric.get(report), metric.precision));
      }
      table.AddRow(std::move(row));
    }
    std::printf("-- Ablation dt | CDC | %s --\n", metric.title);
    table.Print();
    std::printf("\n");
  }
  return 0;
}
