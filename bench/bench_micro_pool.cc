// Micro benchmarks of the decision-path hot spots: the dial-a-ride route
// planner by group size, shareability-graph insertion, clique enumeration
// via best-group recomputation, GMM fitting, threshold optimization, and
// value-network inference.
#include <benchmark/benchmark.h>

#include <memory>

#include "src/common/rng.h"
#include "src/geo/city_generator.h"
#include "src/pool/order_pool.h"
#include "src/rl/featurizer.h"
#include "src/rl/mlp.h"
#include "src/stats/em_fitter.h"
#include "src/stats/threshold_optimizer.h"

namespace {

using namespace watter;

struct PoolFixture {
  City city;
  std::unique_ptr<TravelTimeOracle> oracle;
  std::vector<Order> orders;

  PoolFixture() {
    auto generated = GenerateCity({.width = 32, .height = 32, .seed = 3});
    city = std::move(generated).value();
    auto built = BuildOracle(city.graph, OracleKind::kMatrix);
    oracle = std::move(built).value();
    Rng rng(11);
    for (OrderId id = 1; id <= 400; ++id) {
      Order order;
      order.id = id;
      order.pickup = city.RandomNode(&rng);
      do {
        order.dropoff = city.RandomNode(&rng);
      } while (order.dropoff == order.pickup);
      order.riders = 1;
      order.release = rng.Uniform(0, 600);
      order.shortest_cost = oracle->Cost(order.pickup, order.dropoff);
      order.deadline = order.release + 1.6 * order.shortest_cost;
      order.wait_limit = 0.8 * order.shortest_cost;
      orders.push_back(order);
    }
  }
};

PoolFixture& Fixture() {
  static PoolFixture* fixture = new PoolFixture();
  return *fixture;
}

void BM_RoutePlannerByGroupSize(benchmark::State& state) {
  PoolFixture& fx = Fixture();
  RoutePlanner planner(fx.oracle.get());
  int k = static_cast<int>(state.range(0));
  Rng rng(5);
  for (auto _ : state) {
    std::vector<const Order*> group;
    for (int i = 0; i < k; ++i) {
      group.push_back(&fx.orders[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(fx.orders.size()) - 1))]);
    }
    auto plan = planner.PlanBest(group, 0.0, 5);
    benchmark::DoNotOptimize(plan.ok());
  }
}
BENCHMARK(BM_RoutePlannerByGroupSize)->DenseRange(1, 5);

void BM_PoolInsert(benchmark::State& state) {
  PoolFixture& fx = Fixture();
  for (auto _ : state) {
    state.PauseTiming();
    OrderPool pool(fx.oracle.get(), PoolOptions{});
    state.ResumeTiming();
    for (int i = 0; i < 100; ++i) {
      (void)pool.Insert(fx.orders[i], fx.orders[i].release);
    }
    benchmark::DoNotOptimize(pool.size());
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_PoolInsert);

void BM_BestGroupRecompute(benchmark::State& state) {
  PoolFixture& fx = Fixture();
  OrderPool pool(fx.oracle.get(), PoolOptions{});
  for (int i = 0; i < 120; ++i) {
    (void)pool.Insert(fx.orders[i], fx.orders[i].release);
  }
  Rng rng(9);
  for (auto _ : state) {
    OrderId id = fx.orders[static_cast<size_t>(rng.UniformInt(0, 119))].id;
    pool.best_groups().Recompute(id, 600.0);
    benchmark::DoNotOptimize(pool.BestFor(id, 600.0));
  }
}
BENCHMARK(BM_BestGroupRecompute);

void BM_PoolDepartureChurn(benchmark::State& state) {
  // Departure-heavy churn: a warm 150-order pool where every op removes the
  // oldest resident (the OnOrderRemoved path), inserts a fresh order, and
  // refreshes the stale best groups — the per-check-round maintenance
  // shape. Dominated by how cheaply a departure dirties its owners and how
  // much planning the refresh can reuse.
  PoolFixture& fx = Fixture();
  OrderPool pool(fx.oracle.get(), PoolOptions{});
  constexpr int kResident = 150;
  for (int i = 0; i < kResident; ++i) {
    (void)pool.Insert(fx.orders[static_cast<size_t>(i)], 600.0);
  }
  pool.RefreshBestGroups(pool.SortedOrderIds(), 600.0);
  size_t oldest = 0;
  size_t next = kResident;
  for (auto _ : state) {
    (void)pool.Remove(fx.orders[oldest % fx.orders.size()].id);
    ++oldest;
    (void)pool.Insert(fx.orders[next % fx.orders.size()], 600.0);
    ++next;
    pool.RefreshBestGroups(pool.SortedOrderIds(), 600.0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PoolDepartureChurn);

void BM_PoolRepeatedAnchorRefresh(benchmark::State& state) {
  // Repeated-anchor enumeration: every resident marked dirty and refreshed
  // with no graph change in between — the work an unrelated dirty event
  // used to force on its neighbors. With the shared group-plan cache the
  // re-search reuses every previously planned clique.
  PoolFixture& fx = Fixture();
  OrderPool pool(fx.oracle.get(), PoolOptions{});
  for (int i = 0; i < 150; ++i) {
    (void)pool.Insert(fx.orders[static_cast<size_t>(i)], 600.0);
  }
  std::vector<OrderId> ids = pool.SortedOrderIds();
  pool.RefreshBestGroups(ids, 600.0);
  for (auto _ : state) {
    for (OrderId id : ids) pool.best_groups().MarkDirty(id);
    pool.RefreshBestGroups(ids, 600.0);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(ids.size()));
}
BENCHMARK(BM_PoolRepeatedAnchorRefresh);

void BM_GmmFit(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> data;
  for (int i = 0; i < 5000; ++i) {
    data.push_back(rng.Bernoulli(0.6) ? rng.Normal(120, 40)
                                      : rng.Normal(400, 90));
  }
  for (auto _ : state) {
    auto fit = FitGmm(data, {.num_components = 3, .max_iterations = 50});
    benchmark::DoNotOptimize(fit.ok());
  }
  state.SetLabel("5k samples, 3 components");
}
BENCHMARK(BM_GmmFit)->Unit(benchmark::kMillisecond);

void BM_ThresholdOptimization(benchmark::State& state) {
  auto mixture = GaussianMixture::Create(
      {{.weight = 0.6, .mean = 120, .variance = 1600},
       {.weight = 0.4, .mean = 400, .variance = 8100}});
  CdfFn cdf = [&mixture](double x) { return mixture->Cdf(x); };
  Rng rng(7);
  for (auto _ : state) {
    double penalty = rng.Uniform(100, 2000);
    benchmark::DoNotOptimize(OptimalThreshold(penalty, cdf));
  }
}
BENCHMARK(BM_ThresholdOptimization);

void BM_ValueNetworkForward(benchmark::State& state) {
  PoolFixture& fx = Fixture();
  Featurizer featurizer(&fx.city.graph, 10);
  Mlp network({featurizer.feature_size(), 64, 32, 1}, 1);
  std::vector<int> counts(100, 2);
  auto env = featurizer.MakeSnapshot(counts, counts, counts);
  CompactState compact = featurizer.MakeState(fx.orders[0], 100.0, env);
  std::vector<float> features;
  featurizer.Write(compact, &features);
  for (auto _ : state) {
    benchmark::DoNotOptimize(network.Forward(features));
  }
}
BENCHMARK(BM_ValueNetworkForward);

}  // namespace

BENCHMARK_MAIN();
