// Figure 4: performance while varying the number of workers m.
//
// Paper sweep: m in {3k, 4k, 5k, 6k}. Reproduction sweep (same n/m ratios):
// m in {90, 120, 150, 180}.
//
// Shapes to reproduce (Section VII-B): extra time and unified cost decrease
// with m; service rate increases; WATTER-expect leads throughout (e.g. NYC
// m=6000: +4.3%/+9.6%/+12.8% service rate vs timeout/online/GDP).
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace watter;
  using namespace watter::bench;
  bool quick = QuickMode(argc, argv);
  int threads = BenchThreads(argc, argv);
  SimOptions sim;
  sim.dispatch = SingleDispatchMode(argc, argv);
  sim.num_shards = SingleBenchShards(argc, argv);
  BenchJson().path = BenchJsonPath(argc, argv);
  BenchJson().threads = threads;
  BenchJson().dispatch = DispatchName(sim.dispatch);
  BenchJson().shards = sim.num_shards;
  GeoBackend geo = BenchGeoBackend(argc, argv);
  BenchJson().geo = GeoName(geo);

  for (DatasetKind dataset : BenchDatasets(quick)) {
    WorkloadOptions base = BaseWorkload(dataset);
    base.num_threads = threads;
    base.geo = geo;
    std::unique_ptr<ExpectModel> model;
    if (!quick) {
      auto trained = TrainExpect(base);
      if (!trained.ok()) {
        std::fprintf(stderr, "training failed: %s\n",
                     trained.status().ToString().c_str());
        return 1;
      }
      model = std::make_unique<ExpectModel>(std::move(trained).value());
    }
    // Observability taps (training days above stay untraced).
    base.trace_path = BenchTracePath(argc, argv);
    base.timeline_path = BenchTimelinePath(argc, argv);
    std::vector<int> sweep = {90, 120, 150, 180};
    if (quick) sweep = {90, 150};
    RunSweep<int>(
        "Figure 4", dataset, "m", sweep,
        [&base](int m) {
          WorkloadOptions options = base;
          options.num_workers = m;
          return options;
        },
        AlgorithmFamily(model.get(), sim));
  }
  return 0;
}
