// Pool-maintenance baseline driver: deterministic counter evidence plus
// quick-size wall times for the incremental pool hot paths, written as the
// committed BENCH_pool.json records (docs/PERFORMANCE.md).
//
// Three cases:
//   fig3_quick_n1500_timeout  — the fig3-quick contended point end to end
//       (CDC n=1500, m=150, WATTER-timeout), one record per dispatch engine.
//       The planner_plans / plan_cache_* fields are the PR-acceptance
//       counters: deterministic, so diffs are exact.
//   micro_departure_churn     — departure-heavy OnOrderRemoved churn: remove
//       and re-insert orders in a warm pool, refreshing best groups each
//       step. Exercises the reverse-membership index.
//   micro_repeated_anchor     — the same anchors recomputed over and over on
//       an unchanged graph slice (the "unrelated dirty event" pattern).
//       Exercises the shared group-plan cache.
//
// Counters are bitwise deterministic; the us/op fields are 1-core
// shared-container wall clock — treat <20% deltas as noise
// (docs/PERFORMANCE.md, noisy-box caveats).
//
// Usage: bench_pool_stats [--json FILE] [--label NAME]
// CMake target `bench_pool_json` runs this with --json
// ${CMAKE_BINARY_DIR}/BENCH_pool.json.
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "src/common/stopwatch.h"
#include "src/geo/city_generator.h"
#include "src/pool/order_pool.h"

namespace {

using namespace watter;
using namespace watter::bench;

const char* g_label = "current";

void EmitRecord(const std::string& body) {
  BenchJson().records.push_back("{\"label\": \"" + std::string(g_label) +
                                "\", " + body + "}");
}

std::string PoolCounterFields(const PoolStats& pool) {
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "\"planner_plans\": %lld, \"pair_tests\": %lld, "
      "\"recomputes\": %lld, \"groups_evaluated\": %lld, "
      "\"plan_cache_hits\": %lld, \"plan_cache_misses\": %lld, "
      "\"plan_cache_replans\": %lld, \"plan_cache_evictions\": %lld, "
      "\"plan_cache_seeds\": %lld, \"reverse_index_fanout\": %lld",
      static_cast<long long>(pool.planner_plans),
      static_cast<long long>(pool.pair_tests),
      static_cast<long long>(pool.best_group_recomputes),
      static_cast<long long>(pool.groups_evaluated),
      static_cast<long long>(pool.plan_cache_hits),
      static_cast<long long>(pool.plan_cache_misses),
      static_cast<long long>(pool.plan_cache_replans),
      static_cast<long long>(pool.plan_cache_evictions),
      static_cast<long long>(pool.plan_cache_seeds),
      static_cast<long long>(pool.reverse_index_fanout));
  return buffer;
}

// ---------------------------------------------------------------------------
// Case 1: the fig3-quick contended point, end to end, per dispatch engine.
// ---------------------------------------------------------------------------
void RunEndToEnd(DispatchMode mode) {
  WorkloadOptions workload = BaseWorkload(DatasetKind::kCdc);
  auto scenario = GenerateScenario(workload);
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario failed: %s\n",
                 scenario.status().ToString().c_str());
    std::exit(1);
  }
  TimeoutThresholdProvider provider;
  SimOptions sim;
  sim.dispatch = mode;
  MetricsReport report = RunWatter(&*scenario, &provider, sim);

  char body[512];
  std::snprintf(
      body, sizeof(body),
      "\"case\": \"fig3_quick_n1500_timeout\", \"dispatch\": \"%s\", "
      "\"served\": %lld, \"service_rate\": %.6g, "
      "\"running_time_per_order_us\": %.3f, %s",
      DispatchName(mode), static_cast<long long>(report.served),
      report.service_rate, report.running_time_per_order * 1e6,
      PoolCounterFields(report.pool).c_str());
  EmitRecord(body);
  std::printf("%-28s %-8s served=%lld plans=%lld us/order=%.1f\n",
              "fig3_quick_n1500_timeout", DispatchName(mode),
              static_cast<long long>(report.served),
              static_cast<long long>(report.pool.planner_plans),
              report.running_time_per_order * 1e6);
}

// ---------------------------------------------------------------------------
// Shared fixture for the micro cases: a warm pool over a 32x32 city.
// ---------------------------------------------------------------------------
struct MicroFixture {
  City city;
  std::unique_ptr<TravelTimeOracle> oracle;
  std::vector<Order> orders;

  explicit MicroFixture(int num_orders) {
    auto generated = GenerateCity({.width = 32, .height = 32, .seed = 3});
    city = std::move(generated).value();
    auto built = BuildOracle(city.graph, OracleKind::kMatrix);
    oracle = std::move(built).value();
    Rng rng(11);
    for (OrderId id = 1; id <= num_orders; ++id) {
      Order order;
      order.id = id;
      order.pickup = city.RandomNode(&rng);
      do {
        order.dropoff = city.RandomNode(&rng);
      } while (order.dropoff == order.pickup);
      order.riders = 1;
      order.release = rng.Uniform(0, 600);
      order.shortest_cost = oracle->Cost(order.pickup, order.dropoff);
      order.deadline = order.release + 1.6 * order.shortest_cost;
      order.wait_limit = 0.8 * order.shortest_cost;
      orders.push_back(order);
    }
  }
};

PoolStats SnapshotCounters(OrderPool* pool) {
  PoolStats stats;
  stats.best_group_recomputes = pool->best_groups().recompute_count();
  stats.groups_evaluated = pool->best_groups().groups_evaluated();
  stats.planner_plans = pool->planner().plan_count();
  stats.pair_tests = pool->graph().pair_tests();
  stats.plan_cache_hits = pool->best_groups().plan_cache_hits();
  stats.plan_cache_misses = pool->best_groups().plan_cache_misses();
  stats.plan_cache_replans = pool->best_groups().plan_cache_replans();
  stats.plan_cache_evictions = pool->best_groups().plan_cache_evictions();
  stats.reverse_index_fanout = pool->best_groups().reverse_index_fanout();
  return stats;
}

PoolStats CounterDelta(const PoolStats& after, const PoolStats& before) {
  PoolStats delta;
  delta.best_group_recomputes =
      after.best_group_recomputes - before.best_group_recomputes;
  delta.groups_evaluated = after.groups_evaluated - before.groups_evaluated;
  delta.planner_plans = after.planner_plans - before.planner_plans;
  delta.pair_tests = after.pair_tests - before.pair_tests;
  delta.plan_cache_hits = after.plan_cache_hits - before.plan_cache_hits;
  delta.plan_cache_misses = after.plan_cache_misses - before.plan_cache_misses;
  delta.plan_cache_replans =
      after.plan_cache_replans - before.plan_cache_replans;
  delta.plan_cache_evictions =
      after.plan_cache_evictions - before.plan_cache_evictions;
  delta.reverse_index_fanout =
      after.reverse_index_fanout - before.reverse_index_fanout;
  return delta;
}

void EmitMicro(const char* name, int ops, double seconds,
               const PoolStats& stats) {
  char body[512];
  std::snprintf(body, sizeof(body),
                "\"case\": \"%s\", \"ops\": %d, \"us_per_op\": %.3f, %s",
                name, ops, seconds * 1e6 / ops,
                PoolCounterFields(stats).c_str());
  EmitRecord(body);
  std::printf("%-28s %-8s ops=%d plans=%lld us/op=%.1f\n", name, "-", ops,
              static_cast<long long>(stats.planner_plans),
              seconds * 1e6 / ops);
}

// ---------------------------------------------------------------------------
// Case 2: departure-heavy churn. Warm pool of 150 orders; each op removes
// the oldest resident (OnOrderRemoved path), inserts a fresh order, and
// refreshes every stale best group — the per-check-round maintenance shape.
// ---------------------------------------------------------------------------
void RunDepartureChurn() {
  MicroFixture fx(450);
  OrderPool pool(fx.oracle.get(), PoolOptions{});
  constexpr int kResident = 150;
  constexpr int kOps = 150;
  for (int i = 0; i < kResident; ++i) {
    (void)pool.Insert(fx.orders[static_cast<size_t>(i)], 600.0);
  }
  std::vector<OrderId> ids = pool.SortedOrderIds();
  pool.RefreshBestGroups(ids, 600.0);  // Warm start outside the timed loop.

  PoolStats before = SnapshotCounters(&pool);
  Stopwatch watch;
  {
    ScopedTimer timer(&watch);
    for (int op = 0; op < kOps; ++op) {
      (void)pool.Remove(fx.orders[static_cast<size_t>(op)].id);
      (void)pool.Insert(fx.orders[static_cast<size_t>(kResident + op)], 600.0);
      std::vector<OrderId> live = pool.SortedOrderIds();
      pool.RefreshBestGroups(live, 600.0);
    }
  }
  PoolStats delta = CounterDelta(SnapshotCounters(&pool), before);
  EmitMicro("micro_departure_churn", kOps, watch.ElapsedSeconds(), delta);
}

// ---------------------------------------------------------------------------
// Case 3: repeated-anchor enumeration. A warm pool; the same anchor set is
// marked dirty and recomputed repeatedly with no graph change in between —
// the shape every unrelated dirty event used to force on its neighbors.
// ---------------------------------------------------------------------------
void RunRepeatedAnchor() {
  MicroFixture fx(150);
  OrderPool pool(fx.oracle.get(), PoolOptions{});
  for (const Order& order : fx.orders) (void)pool.Insert(order, 600.0);
  std::vector<OrderId> ids = pool.SortedOrderIds();
  pool.RefreshBestGroups(ids, 600.0);  // Warm start.

  constexpr int kRounds = 40;
  PoolStats before = SnapshotCounters(&pool);
  Stopwatch watch;
  {
    ScopedTimer timer(&watch);
    for (int round = 0; round < kRounds; ++round) {
      for (OrderId id : ids) pool.best_groups().MarkDirty(id);
      pool.RefreshBestGroups(ids, 600.0);
    }
  }
  PoolStats delta = CounterDelta(SnapshotCounters(&pool), before);
  EmitMicro("micro_repeated_anchor",
            kRounds * static_cast<int>(ids.size()), watch.ElapsedSeconds(),
            delta);
}

}  // namespace

int main(int argc, char** argv) {
  BenchJson().path = BenchJsonPath(argc, argv);
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--label") == 0) g_label = argv[i + 1];
  }
  RunEndToEnd(DispatchMode::kSerial);
  RunEndToEnd(DispatchMode::kBatched);
  RunDepartureChurn();
  RunRepeatedAnchor();
  return 0;
}
